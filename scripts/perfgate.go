//go:build ignore

// perfgate is the engine performance gate: it compares a freshly measured
// engine sweep (the CI bench job's BENCH_engine.json output) against the
// committed record at the repository root and fails the build when the
// engine's throughput trajectory regresses.
//
// Two checks:
//
//   - the n=16 ring speedup over the pinned pre-overhaul baseline must stay
//     above a floor (the hot-path overhaul's headline number, with headroom
//     for runner noise);
//   - no cell present in both documents may regress by more than the
//     allowed factor against its committed events/s.
//
// Cells only present in one document are reported but do not fail the gate
// (the sweep plan grows over PRs). Thresholds are deliberately loose: the
// gate catches order-of-magnitude losses — an accidental re-introduction of
// per-event garbage or a box-strategy regression — not run-to-run jitter on
// shared CI runners.
//
// Usage: go run scripts/perfgate.go <fresh.json> <committed.json>
//
// Stdlib only, like the rest of the repo's tooling.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

const (
	// speedupFloor is the minimum acceptable n=16 ring speedup over the
	// pinned pre-overhaul baseline (committed trajectory sits above 30x).
	speedupFloor = 20.0
	// regressFactor is the maximum acceptable per-cell slowdown against the
	// committed record.
	regressFactor = 3.0
)

type cell struct {
	Workload     string  `json:"workload"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type doc struct {
	SpeedupN16Ring float64 `json:"speedup_n16_ring"`
	Cells          []*cell `json:"cells"`
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: perfgate <fresh.json> <committed.json>")
		os.Exit(2)
	}
	fresh, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	committed, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	failed := false
	if fresh.SpeedupN16Ring < speedupFloor {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL n=16 ring speedup %.1fx below the %.0fx floor\n",
			fresh.SpeedupN16Ring, speedupFloor)
		failed = true
	} else {
		fmt.Printf("perfgate: n=16 ring speedup %.1fx (floor %.0fx)\n", fresh.SpeedupN16Ring, speedupFloor)
	}

	old := map[string]float64{}
	for _, c := range committed.Cells {
		old[c.Workload] = c.EventsPerSec
	}
	seen := map[string]bool{}
	for _, c := range fresh.Cells {
		seen[c.Workload] = true
		was, ok := old[c.Workload]
		if !ok {
			fmt.Printf("perfgate: new cell %s at %.0f events/s (no committed reference)\n", c.Workload, c.EventsPerSec)
			continue
		}
		if was > 0 && c.EventsPerSec < was/regressFactor {
			fmt.Fprintf(os.Stderr, "perfgate: FAIL %s regressed %.1fx (%.0f -> %.0f events/s, allowed factor %.0f)\n",
				c.Workload, was/c.EventsPerSec, was, c.EventsPerSec, regressFactor)
			failed = true
			continue
		}
		fmt.Printf("perfgate: %s %.0f events/s (committed %.0f)\n", c.Workload, c.EventsPerSec, was)
	}
	for _, c := range committed.Cells {
		if !seen[c.Workload] {
			fmt.Printf("perfgate: committed cell %s absent from the fresh sweep\n", c.Workload)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("perfgate: OK")
}
