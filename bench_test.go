package decentmon

// One benchmark per table and figure of the paper's evaluation (Chapter 5),
// plus micro-benchmarks of the substrates and an ablation against the
// centralized and replicated baselines. Each benchmark reports the paper's
// metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the quantities behind Table 5.1 and Figs. 5.1–5.9 (see
// EXPERIMENTS.md for the measured-vs-paper comparison).

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"decentmon/internal/automaton"
	"decentmon/internal/boolfn"
	"decentmon/internal/central"
	"decentmon/internal/core"
	"decentmon/internal/dist"
	"decentmon/internal/experiments"
	"decentmon/internal/lattice"
	"decentmon/internal/ltl"
	"decentmon/internal/props"
	"decentmon/internal/vclock"
)

// benchCfg keeps the figure benchmarks fast enough for -bench=. while
// preserving the paper's workload shape (µ=3s, σ=1s, Commµ=3s, 2..5
// processes; we use a reduced event count and a single seed per iteration).
var benchCfg = experiments.Config{
	Ns:              []int{2, 3, 4, 5},
	Seeds:           []int64{1},
	InternalPerProc: 10,
	EvtMu:           3, EvtSigma: 1,
	CommMu: 3, CommSigma: 1,
}

// BenchmarkTable5_1_AutomatonSynthesis regenerates Table 5.1: the paper-shape
// automata for all six properties at n=2..5, reporting total transitions and
// the number of cells matching the paper exactly.
func BenchmarkTable5_1_AutomatonSynthesis(b *testing.B) {
	var rows []experiments.Table51Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table51()
		if err != nil {
			b.Fatal(err)
		}
	}
	total, exact := 0, 0
	for _, r := range rows {
		total += r.Total
		if r.Total == r.PaperTot && r.Outgoing == r.PaperOut && r.Self == r.PaperSelf {
			exact++
		}
	}
	b.ReportMetric(float64(total), "transitions")
	b.ReportMetric(float64(exact), "exact-cells/24")
}

// BenchmarkFig5_1_TransitionCounts reports the Fig. 5.1 series (total and
// outgoing transition counts per property and size).
func BenchmarkFig5_1_TransitionCounts(b *testing.B) {
	outgoing := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table51()
		if err != nil {
			b.Fatal(err)
		}
		outgoing = 0
		for _, r := range rows {
			outgoing += r.Outgoing
		}
	}
	b.ReportMetric(float64(outgoing), "outgoing-transitions")
}

// BenchmarkFig5_2_5_3_MonitorAutomata renders the monitor automata shown in
// Figs. 5.2 and 5.3 (DOT form).
func BenchmarkFig5_2_5_3_MonitorAutomata(b *testing.B) {
	bytes := 0
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Automata(2)
		if err != nil {
			b.Fatal(err)
		}
		bytes = 0
		for _, d := range figs {
			bytes += len(d)
		}
	}
	b.ReportMetric(float64(bytes), "dot-bytes")
}

func benchMessages(b *testing.B, properties []string) {
	var msgs, events float64
	for i := 0; i < b.N; i++ {
		msgs, events = 0, 0
		for _, p := range properties {
			cells, err := experiments.Sweep([]string{p}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range cells {
				msgs += c.Messages
				events += c.Events
			}
		}
	}
	b.ReportMetric(msgs, "monitor-msgs")
	b.ReportMetric(events, "events")
	b.ReportMetric(msgs/events, "msgs/event")
}

// BenchmarkFig5_4_MessagesABC measures monitoring-message overhead for
// properties A, B, C across n=2..5 (Fig. 5.4).
func BenchmarkFig5_4_MessagesABC(b *testing.B) { benchMessages(b, []string{"A", "B", "C"}) }

// BenchmarkFig5_5_MessagesDEF measures monitoring-message overhead for
// properties D, E, F across n=2..5 (Fig. 5.5).
func BenchmarkFig5_5_MessagesDEF(b *testing.B) { benchMessages(b, []string{"D", "E", "F"}) }

// BenchmarkFig5_6_DelayTimePct measures the paced-replay delay-time
// percentage per global view (Fig. 5.6) for properties A and D at n=3.
func BenchmarkFig5_6_DelayTimePct(b *testing.B) {
	cfg := benchCfg
	cfg.Ns = []int{3}
	cfg.InternalPerProc = 6
	cfg.Pace = 2e-4 // one simulated second = 0.2ms
	var delay float64
	for i := 0; i < b.N; i++ {
		delay = 0
		for _, p := range []string{"A", "D"} {
			cell, err := experiments.Measure(p, 3, cfg)
			if err != nil {
				b.Fatal(err)
			}
			delay += cell.DelayPct
		}
	}
	b.ReportMetric(delay, "delay-pct-per-gv")
}

// BenchmarkFig5_7_DelayedEvents measures the average delayed-event queue
// (Fig. 5.7) across all six properties at n=4.
func BenchmarkFig5_7_DelayedEvents(b *testing.B) {
	cfg := benchCfg
	cfg.Ns = []int{4}
	var delayed float64
	for i := 0; i < b.N; i++ {
		delayed = 0
		for _, p := range props.Names {
			cell, err := experiments.Measure(p, 4, cfg)
			if err != nil {
				b.Fatal(err)
			}
			delayed += cell.DelayedEvents
		}
		delayed /= float64(len(props.Names))
	}
	b.ReportMetric(delayed, "delayed-events")
}

// BenchmarkFig5_8_MemoryGlobalViews measures the total number of global
// views created (Fig. 5.8's memory-overhead proxy) across the sweep.
func BenchmarkFig5_8_MemoryGlobalViews(b *testing.B) {
	var gvs float64
	for i := 0; i < b.N; i++ {
		gvs = 0
		for _, p := range props.Names {
			cells, err := experiments.Sweep([]string{p}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range cells {
				gvs += c.GlobalViews
			}
		}
	}
	b.ReportMetric(gvs, "global-views")
}

// BenchmarkFig5_9_CommFrequency runs the communication-frequency sweep
// (property C, 4 processes, Commµ ∈ {3,6,9,15,∞}) of Fig. 5.9.
func BenchmarkFig5_9_CommFrequency(b *testing.B) {
	cfg := benchCfg
	cfg.InternalPerProc = 8
	var msgs float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.CommFrequency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		msgs = 0
		for _, c := range cells {
			msgs += c.Messages
		}
	}
	b.ReportMetric(msgs, "monitor-msgs")
}

// BenchmarkBaselines compares the decentralized algorithm against the
// replicated-broadcast and centralized configurations (the Fig. 1.1 /
// Table 6.1 design space) on property D at n=4.
func BenchmarkBaselines(b *testing.B) {
	var row *experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Baselines("D", 4, 1, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if !row.Agree {
			b.Fatal("baselines disagree")
		}
	}
	b.ReportMetric(float64(row.DecMsgs), "dec-msgs")
	b.ReportMetric(float64(row.RepMsgs), "repl-msgs")
	b.ReportMetric(float64(row.CentralMsgs), "central-msgs")
}

// --- ablations and micro-benchmarks of the substrates ---

// BenchmarkAblationMinimalVsPaperShape compares monitoring cost under the
// minimal versus paper-shape automata (the §5.1 design choice).
func BenchmarkAblationMinimalVsPaperShape(b *testing.B) {
	cfg := benchCfg
	cfg.Ns = []int{3}
	var minMsgs, shapeMsgs float64
	for i := 0; i < b.N; i++ {
		cfg.MinimalAutomata = true
		cmin, err := experiments.Measure("F", 3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.MinimalAutomata = false
		cshape, err := experiments.Measure("F", 3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		minMsgs, shapeMsgs = cmin.Messages, cshape.Messages
	}
	b.ReportMetric(minMsgs, "msgs-minimal")
	b.ReportMetric(shapeMsgs, "msgs-paper-shape")
}

// BenchmarkSynthesisMinimal measures minimal-monitor synthesis for the
// heaviest evaluation property (F at n=5, 10 propositions).
func BenchmarkSynthesisMinimal(b *testing.B) {
	fs, err := props.Formula("F", 5)
	if err != nil {
		b.Fatal(err)
	}
	f := ltl.MustParse(fs)
	pm := dist.PerProcess(5, "p", "q")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := automaton.Build(f, pm.Names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisProgression measures paper-shape synthesis for the same
// property.
func BenchmarkSynthesisProgression(b *testing.B) {
	fs, err := props.Formula("F", 5)
	if err != nil {
		b.Fatal(err)
	}
	f := ltl.MustParse(fs)
	pm := dist.PerProcess(5, "p", "q")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := automaton.BuildProgression(f, pm.Names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleDP measures the Chapter-3 oracle over a 4-process run.
func BenchmarkOracleDP(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 10, CommMu: 3, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("D", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lattice.Evaluate(ts, mon); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOracleMode times one tractable oracle on a 16-process execution
// with an arity-3 property — the regime the exact DP cannot reach at all
// (its lattice there has ~10¹⁵ cuts).
func benchOracleMode(b *testing.B, cfg lattice.OracleConfig) {
	mon, pm, err := props.BuildAt("B", 3, false)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := dist.Generate(dist.GenConfig{
		N: 16, InternalPerProc: 6, CommMu: 6, CommSigma: 1,
		Topology: dist.TopoRing, PlantGoal: true, Seed: 1,
		TrueProbs: map[string]float64{"p": 0.9, "q": 0.8},
	}).WithProps(pm)
	if err != nil {
		b.Fatal(err)
	}
	events := int64(ts.TotalEvents())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lattice.EvaluateOracle(ts, mon, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NumCuts), "cuts/op")
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkOracleSliced16(b *testing.B) {
	benchOracleMode(b, lattice.OracleConfig{Mode: lattice.ModeSliced})
}

func BenchmarkOracleSampling16(b *testing.B) {
	benchOracleMode(b, lattice.OracleConfig{Mode: lattice.ModeSampling, MaxFrontier: 256, Seed: 1})
}

// BenchmarkDecentralizedRun16 measures the first decentralized size the
// exact oracle kept dark: 16 monitors, arity-3 property, detection only.
func BenchmarkDecentralizedRun16(b *testing.B) {
	mon, pm, err := props.BuildAt("B", 3, false)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := dist.Generate(dist.GenConfig{
		N: 16, InternalPerProc: 4, CommMu: 6, CommSigma: 1,
		Topology: dist.TopoRing, PlantGoal: true, Seed: 1,
		TrueProbs: map[string]float64{"p": 0.9, "q": 0.8},
	}).WithProps(pm)
	if err != nil {
		b.Fatal(err)
	}
	events := int64(ts.TotalEvents())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.RunConfig{Traces: ts, Automaton: mon, SkipFinalize: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verdicts[automaton.Top] {
			b.Fatal("goal verdict lost")
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkBoxBroadcast16 measures the dense-broadcast workload the sliced
// box sweep made tractable: the calibrated 16-process regime over broadcast
// at the ring's communication density (Commµ = 6). The full-width exact DP
// deterministically dies on its node budget here (the conformance suite pins
// that in TestDenseBroadcastSlicedTractable); the default sliced engine
// explores the arity-3 property's 3-dimensional projected region instead.
func BenchmarkBoxBroadcast16(b *testing.B) {
	mon, pm, err := props.BuildAt("B", 3, false)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := dist.Generate(dist.GenConfig{
		N: 16, InternalPerProc: 4, CommMu: 6, CommSigma: 1,
		Topology: dist.TopoBroadcast, PlantGoal: true, Seed: 1,
		TrueProbs: map[string]float64{"p": 0.9, "q": 0.8},
	}).WithProps(pm)
	if err != nil {
		b.Fatal(err)
	}
	events := int64(ts.TotalEvents())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.RunConfig{Traces: ts, Automaton: mon, SkipFinalize: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verdicts[automaton.Top] {
			b.Fatal("goal verdict lost")
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCentralMonitor measures the online centralized baseline.
func BenchmarkCentralMonitor(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 10, CommMu: 3, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("D", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := central.Run(ts, mon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecentralizedRun measures one full decentralized run end to end.
func BenchmarkDecentralizedRun(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 10, CommMu: 3, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("D", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.RunConfig{Traces: ts, Automaton: mon}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorStep measures a single automaton transition.
func BenchmarkMonitorStep(b *testing.B) {
	mon, err := props.Build("F", 4, true)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	letters := make([]uint32, 1024)
	for i := range letters {
		letters[i] = uint32(rng.Intn(1 << len(mon.Props)))
	}
	b.ResetTimer()
	q := 0
	for i := 0; i < b.N; i++ {
		q = mon.Step(q, letters[i%len(letters)])
	}
	_ = q
}

// BenchmarkVectorClocks measures merge+compare on 8-process clocks.
func BenchmarkVectorClocks(b *testing.B) {
	a := vclock.VC{1, 5, 3, 9, 2, 8, 4, 7}
	c := vclock.VC{2, 4, 3, 8, 3, 7, 5, 6}
	for i := 0; i < b.N; i++ {
		_ = vclock.Max(a, c).Less(a)
	}
}

// BenchmarkQuineMcCluskey measures guard minimization on an 8-variable
// random onset.
func BenchmarkQuineMcCluskey(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var onset []uint32
	for m := uint32(0); m < 256; m++ {
		if rng.Intn(2) == 0 {
			onset = append(onset, m)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boolfn.Minimize(onset, 8)
	}
}

// BenchmarkTraceGeneration measures the workload generator at the paper's
// largest scale.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dist.Generate(dist.GenConfig{
			N: 5, InternalPerProc: 20, CommMu: 3, CommSigma: 1, Seed: int64(i),
		})
	}
}

// BenchmarkLassoEvaluator measures the reference LTL checker used for
// cross-validation.
func BenchmarkLassoEvaluator(b *testing.B) {
	f := ltl.MustParse("G ((a U b) && (b U a)) || F G (a && !b)")
	word := make([]uint32, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range word {
		word[i] = uint32(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		automaton.EvalLasso(f, []string{"a", "b"}, word, 16)
	}
}

// --- topology scenarios (beyond the paper's uniform unicast) ---

// benchTopology runs a decentralized detection-only run of property B over
// 6 processes communicating in the given shape — beyond the paper's largest
// scale (5), with drifting valuations.
func benchTopology(b *testing.B, topo dist.Topology) {
	cfg := dist.GenConfig{
		N: 6, InternalPerProc: 8,
		CommMu: 3, CommSigma: 1,
		Topology: topo,
		Clusters: 2, CrossProb: 0.1,
		TrueProbs: map[string]float64{"p": 0.3, "q": 0.25},
		PlantGoal: true, Seed: 1,
	}
	mon, err := props.Build("B", 6, false)
	if err != nil {
		b.Fatal(err)
	}
	ts := dist.Generate(cfg)
	b.ResetTimer()
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.RunConfig{Traces: ts, Automaton: mon, SkipFinalize: true})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.NetMessages
	}
	b.ReportMetric(float64(ts.TotalEvents()), "events")
	b.ReportMetric(float64(msgs), "monitor-msgs")
}

// BenchmarkTopologyRing monitors a 6-process ring pipeline.
func BenchmarkTopologyRing(b *testing.B) { benchTopology(b, dist.TopoRing) }

// BenchmarkTopologyStar monitors hub-and-spoke communication through
// process 0.
func BenchmarkTopologyStar(b *testing.B) { benchTopology(b, dist.TopoStar) }

// BenchmarkTopologyBroadcast monitors broadcast bursts (every communication
// event fans out to all 5 peers).
func BenchmarkTopologyBroadcast(b *testing.B) { benchTopology(b, dist.TopoBroadcast) }

// BenchmarkTopologyClustered monitors two partitioned clusters with 10%
// cross-cluster traffic.
func BenchmarkTopologyClustered(b *testing.B) { benchTopology(b, dist.TopoClustered) }

// BenchmarkTopologySweep runs the experiments-package topology ablation
// (property C, 4 processes, all five shapes) end to end.
func BenchmarkTopologySweep(b *testing.B) {
	cfg := benchCfg
	cfg.InternalPerProc = 8
	var msgs float64
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Topologies("C", 4, cfg)
		if err != nil {
			b.Fatal(err)
		}
		msgs = 0
		for _, c := range cells {
			msgs += c.Messages
		}
	}
	b.ReportMetric(msgs, "monitor-msgs")
}

// --- streaming pipeline ---

// streamBuf renders a generated execution through the given codec once, for
// the reader-side benchmarks.
func streamBuf(b *testing.B, codec dist.Codec, cfg dist.GenConfig) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := dist.Generate(cfg).WriteStream(codec, &buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchReaderCfg is the ~29k-event execution decoded by the codec
// benchmarks; identical for both codecs so events/s compare directly.
var benchReaderCfg = dist.GenConfig{
	N: 4, InternalPerProc: 5000, CommMu: 3, CommSigma: 1, Seed: 1,
}

// benchStreamingReader measures one codec's reader — decode + incremental
// validation — reporting MB/s (via SetBytes) and events/s.
func benchStreamingReader(b *testing.B, codecName string) {
	codec, err := dist.CodecByName(codecName)
	if err != nil {
		b.Fatal(err)
	}
	data := streamBuf(b, codec, benchReaderCfg)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		src, err := codec.Open(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for {
			_, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			events++
		}
	}
	b.ReportMetric(float64(events), "events")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/s, "events/s")
	}
}

// BenchmarkStreamingReader measures the JSON-lines validating reader.
func BenchmarkStreamingReader(b *testing.B) { benchStreamingReader(b, "jsonl") }

// BenchmarkBinaryStreamingReader measures the ".dmtb" binary reader over
// the same execution; the events/s ratio against BenchmarkStreamingReader
// is the codec speedup the streaming pipeline gains end to end.
func BenchmarkBinaryStreamingReader(b *testing.B) { benchStreamingReader(b, "dmtb") }

// benchStreamWriter measures one codec's writer alone — header + records
// into memory, no disk and no per-iteration re-validation (the set is
// validated once during setup, like SaveFile does) — reporting MB/s of
// output produced.
func benchStreamWriter(b *testing.B, codecName string) {
	codec, err := dist.CodecByName(codecName)
	if err != nil {
		b.Fatal(err)
	}
	ts := dist.Generate(benchReaderCfg)
	if err := ts.Validate(); err != nil {
		b.Fatal(err)
	}
	var size bytes.Buffer
	if err := ts.WriteStream(codec, &size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(size.Len())
		sink, err := codec.Create(&buf, ts.Props, ts.InitialState())
		if err != nil {
			b.Fatal(err)
		}
		src := ts.Stream()
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := sink.Write(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWriter measures the JSON-lines stream writer.
func BenchmarkStreamWriter(b *testing.B) { benchStreamWriter(b, "jsonl") }

// BenchmarkBinaryStreamWriter measures the ".dmtb" binary stream writer.
func BenchmarkBinaryStreamWriter(b *testing.B) { benchStreamWriter(b, "dmtb") }

// BenchmarkPathMonitor measures the bounded-memory single-path evaluator
// (dlmon's -bounded mode) over a ~29k-event execution.
func BenchmarkPathMonitor(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 5000, CommMu: 3, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("B", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := central.RunPath(ts.Stream(), mon)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != automaton.Top {
			b.Fatalf("path verdict %v, want T", res.Verdict)
		}
	}
}

// BenchmarkStreamedDecentralizedRun measures one full decentralized run fed
// from the streaming path (compare BenchmarkDecentralizedRun), reporting
// the knowledge-GC metrics of the run.
func BenchmarkStreamedDecentralizedRun(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 10, CommMu: 3, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("D", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	peak, collected := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := core.RunStream(ts.Stream(), core.RunConfig{Automaton: mon})
		if err != nil {
			b.Fatal(err)
		}
		peak, collected = 0, 0
		for _, m := range res.Metrics {
			if m.KnowledgePeak > peak {
				peak = m.KnowledgePeak
			}
			collected += m.KnowledgeCollected
		}
	}
	b.ReportMetric(float64(peak), "know-peak")
	b.ReportMetric(float64(collected), "know-collected")
}

// BenchmarkAugmentedTimeOracle measures the §7.2.1 future-work extension:
// how much ε-synchronized physical clocks shrink the exploration relative to
// the pure causal lattice (ε = ∞).
func BenchmarkAugmentedTimeOracle(b *testing.B) {
	ts := dist.Generate(dist.GenConfig{
		N: 4, InternalPerProc: 8, CommMu: 6, CommSigma: 1, PlantGoal: true, Seed: 1,
	})
	mon, err := props.Build("B", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	var cuts0, cuts1, cutsInf int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r0, err := lattice.EvaluateHybrid(ts, mon, 0)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := lattice.EvaluateHybrid(ts, mon, 1)
		if err != nil {
			b.Fatal(err)
		}
		rInf, err := lattice.EvaluateHybrid(ts, mon, lattice.Inf)
		if err != nil {
			b.Fatal(err)
		}
		cuts0, cuts1, cutsInf = r0.NumCuts, r1.NumCuts, rInf.NumCuts
	}
	b.ReportMetric(float64(cuts0), "cuts-eps0")
	b.ReportMetric(float64(cuts1), "cuts-eps1s")
	b.ReportMetric(float64(cutsInf), "cuts-causal")
}
