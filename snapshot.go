package decentmon

// Durable sessions: Snapshot captures a running session's complete
// monitoring state — every monitor's automaton state set, knowledge window,
// outstanding searches and parked protocol work, plus the session's
// bookkeeping and the internal stamper's clocks — as a self-verifying blob,
// and RestoreSession resumes an equivalent session from it. The blob is a
// "DMSN" snapshot container (internal/dist) wrapping the engine snapshot and
// the stamper state; any corruption or truncation is detected at restore.
//
// The contract mirrors the feeding contract: take a snapshot only while no
// Process-handle call or Feed is in flight mid-call (concurrent calls are
// paused and resumed safely, but a handle that has stamped an event and not
// yet fed it would leave the stamper one event ahead of the engine).
// Restore, then resume feeding each process at Fed()[p]+1; verdict events
// delivered before the snapshot are re-delivered on the restored session's
// Verdicts channel.

import (
	"context"
	"fmt"
	"time"

	"decentmon/internal/core"
	"decentmon/internal/dist"
)

// Facade snapshot record tags (tag 0 is the container's end record).
const (
	snapTagStamper = 1 // stamper state: message ids, clocks, timestamps
	snapTagEngine  = 2 // the embedded core engine snapshot, itself a container
)

// Snapshot pauses the session at a proven-quiescent instant (every fed event
// and every in-flight monitor message fully absorbed), captures its complete
// state, and resumes it. The session keeps running; ctx bounds only the wait
// for quiescence. Bounded sessions are not snapshottable — the path
// evaluator is O(n) memory, so persisting the feed is the cheaper durability
// story there.
func (s *Session) Snapshot(ctx context.Context) ([]byte, error) {
	if s.core == nil {
		return nil, fmt.Errorf("decentmon: Bounded sessions have no snapshots; persist the feed instead")
	}
	engine, err := s.core.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	b := dist.NewSnapshotBuilder()
	b.Record(snapTagStamper, dist.AppendStamperState(nil, s.stamper.State()))
	b.Record(snapTagEngine, engine)
	return b.Finish(), nil
}

// Fed returns, per process, how many events have been fed so far — for a
// restored session, including everything fed before the snapshot. A feeder
// resuming after RestoreSession continues process p at event Fed()[p]+1.
// Bounded sessions return nil (they have no snapshot support).
func (s *Session) Fed() []int {
	if s.core == nil {
		return nil
	}
	return s.core.Fed()
}

// RestoreSession resumes a session from a Snapshot blob. The spec, process
// count and options must rebuild the configuration the snapshot was taken
// under (same property compilation, mode, finalization and initial state —
// all verified against fingerprints in the blob; a mismatch or any
// corruption is an error, never a silently wrong monitor). Options that do
// not change monitor state — WithContext, WithNetwork, WithMaxLag,
// WithShards — may differ freely. Bounded and WithValidation sessions cannot
// be restored: the path evaluator and the validator hold state a snapshot
// does not carry.
func RestoreSession(spec *Spec, n int, snap []byte, opts ...SessionOption) (*Session, error) {
	o := buildOptions(opts)
	if o.bounded {
		return nil, fmt.Errorf("decentmon: Bounded sessions cannot be restored from a snapshot")
	}
	if o.validate {
		return nil, fmt.Errorf("decentmon: WithValidation cannot resume from a snapshot: the validator's causal ledger is not captured")
	}
	if o.cfg.Pace != 0 {
		return nil, fmt.Errorf("decentmon: sessions are live, not replays; WithPace applies to Run and RunStream")
	}
	if spec == nil || spec.mon == nil {
		return nil, fmt.Errorf("decentmon: nil spec")
	}
	if n < 1 {
		return nil, fmt.Errorf("decentmon: session needs at least one process")
	}
	for i, owner := range spec.Props.Owner {
		if owner >= n {
			return nil, fmt.Errorf("decentmon: proposition %q owned by process %d, session has %d", spec.Props.Names[i], owner, n)
		}
	}
	init := o.init
	if init == nil {
		init = make(GlobalState, n)
	}
	if len(init) != n {
		return nil, fmt.Errorf("decentmon: initial state has %d entries, session has %d processes", len(init), n)
	}

	r, err := dist.OpenSnapshot(snap)
	if err != nil {
		return nil, err
	}
	var stamper *dist.Stamper
	var engine []byte
	for {
		tag, payload, ok := r.Next()
		if !ok {
			break
		}
		switch tag {
		case snapTagStamper:
			if stamper != nil {
				return nil, fmt.Errorf("decentmon: duplicate stamper record in snapshot")
			}
			st, err := dist.DecodeStamperState(payload)
			if err != nil {
				return nil, err
			}
			if stamper, err = dist.RestoreStamper(n, st); err != nil {
				return nil, err
			}
		case snapTagEngine:
			if engine != nil {
				return nil, fmt.Errorf("decentmon: duplicate engine record in snapshot")
			}
			engine = payload
		}
	}
	if stamper == nil || engine == nil {
		return nil, fmt.Errorf("decentmon: snapshot is missing the %s record",
			map[bool]string{true: "stamper", false: "engine"}[stamper == nil])
	}

	cs, err := core.RestoreSession(o.ctx, core.SessionConfig{
		N:            n,
		Automaton:    spec.mon,
		Props:        spec.Props,
		Init:         init,
		Mode:         o.cfg.Mode,
		SkipFinalize: o.cfg.SkipFinalize,
		Network:      o.cfg.Network,
		MaxBoxNodes:  o.cfg.MaxBoxNodes,
		ExactBoxes:   o.cfg.ExactBoxes,
		MaxLag:       o.cfg.MaxLag,
		Shards:       o.cfg.Shards,
	}, engine)
	if err != nil {
		return nil, err
	}
	s := &Session{spec: spec, n: n, stamper: stamper, start: time.Now(),
		core: cs, verdicts: cs.Verdicts()}
	return s, nil
}
