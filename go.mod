module decentmon

go 1.24
