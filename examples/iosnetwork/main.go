// The §5.1 case study on the simulated device network: five "devices" (the
// paper used 2× iPhone 5s, iPad mini 3, iPad Air 2 and an iPhone 6
// simulator over WiFi), each running the trace-driven program with two
// propositions p and q, monitored for the six evaluation properties A–F.
//
// The WiFi network is replaced by the in-memory transport with
// normally-distributed latency; event timing follows the paper's
// Evtµ=3s/Evtσ=1s and Commµ=3s/Commσ=1s (replayed at 2000× speed).
package main

import (
	"fmt"
	"log"
	"time"

	"decentmon"
	"decentmon/internal/experiments"
	"decentmon/internal/props"
	"decentmon/internal/transport"
)

func main() {
	const n = 5
	fmt.Printf("simulated device network: %d devices, WiFi-like latency 5ms±1ms\n\n", n)

	for _, name := range props.Names {
		formula, err := decentmon.CaseStudyProperty(name, n)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := decentmon.Compile(formula, decentmon.PerProcessProps(n, "p", "q"),
			decentmon.PaperShape())
		if err != nil {
			log.Fatal(err)
		}
		total, outgoing, self := spec.Automaton().CountTransitions()

		// The paper's designed traces for this property family.
		cfg := experiments.Config{
			Ns: []int{n}, Seeds: []int64{2016},
			InternalPerProc: 12,
			EvtMu:           3, EvtSigma: 1,
			CommMu: 3, CommSigma: 1,
		}
		cell, err := experiments.Measure(name, n, cfg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("property %s: %s\n", name, formula)
		fmt.Printf("  automaton : %d states, %d transitions (%d outgoing, %d self-loop)\n",
			spec.Automaton().NumStates(), total, outgoing, self)
		fmt.Printf("  events=%.0f  monitor msgs=%.0f  global views=%.0f  verdicts={%s}\n\n",
			cell.Events, cell.Messages, cell.GlobalViews, cell.Verdicts)
	}

	// One full paced run over the latency-injected network for property B,
	// measuring detection latency the way Fig. 5.6 does.
	formula, _ := decentmon.CaseStudyProperty("B", n)
	spec := decentmon.MustCompile(formula, decentmon.PerProcessProps(n, "p", "q"))
	traces := decentmon.Generate(decentmon.GenConfig{
		N: n, InternalPerProc: 10,
		EvtMu: 3, EvtSigma: 1, CommMu: 3, CommSigma: 1,
		TrueProbs: map[string]float64{"p": 0.3, "q": 0.3},
		PlantGoal: true, Seed: 7,
	})
	nw := transport.NewChanNetwork(n, transport.WithLatency(5*time.Millisecond, time.Millisecond, 7))
	start := time.Now()
	res, err := decentmon.Run(spec, traces,
		decentmon.WithNetwork(nw), decentmon.WithPace(5e-4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paced run of property B over the latency network (%.0f× speed):\n", 1/5e-4)
	fmt.Printf("  verdicts %v, first conclusive after %v, total wall %v\n",
		res.VerdictList(), res.FirstConclusive, time.Since(start).Round(time.Millisecond))
}
