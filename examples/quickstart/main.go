// Quickstart: compile an LTL3 property, generate a distributed execution,
// monitor it with one decentralized monitor per process, and check the
// result against the ground-truth oracle.
package main

import (
	"fmt"
	"log"

	"decentmon"
)

func main() {
	// Three processes, each owning boolean propositions p and q.
	props := decentmon.PerProcessProps(3, "p", "q")

	// "Eventually all three processes raise p at the same (consistent
	// global) instant" — property B of the paper's case study.
	spec, err := decentmon.Compile("F (P0.p && P1.p && P2.p)", props)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spec.Describe())

	// A reproducible execution: 12 valuation changes per process with ~3s
	// gaps, broadcast communication every ~3s, and the goal planted at the
	// end (as the paper's designed traces do).
	traces := decentmon.Generate(decentmon.GenConfig{
		N: 3, InternalPerProc: 12,
		EvtMu: 3, EvtSigma: 1,
		CommMu: 3, CommSigma: 1,
		PlantGoal: true, Seed: 42,
	})
	fmt.Printf("execution: %d processes, %d events\n\n", traces.N(), traces.TotalEvents())

	// Decentralized run: one monitor per process over an in-memory network.
	res, err := decentmon.Run(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decentralized verdicts : %v\n", res.VerdictList())
	fmt.Printf("monitoring messages    : %d (%d bytes)\n", res.NetMessages, res.NetBytes)
	for i, m := range res.Metrics {
		fmt.Printf("  monitor %d: %d events, %d searches, %d token hops, %d views\n",
			i, m.EventsProcessed, m.SearchesLaunched, m.TokenHops, m.GlobalViewsCreated)
	}

	// The oracle evaluates every path of the computation lattice; a sound
	// and complete decentralized run reports exactly its verdict set.
	oracle, err := decentmon.Oracle(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noracle verdicts        : %v (over %d consistent cuts)\n",
		oracle.Verdicts, oracle.NumCuts)
}
