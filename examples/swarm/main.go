// Drone-swarm separation monitoring — the future-work scenario of §7.2.5
// ("monitoring that a swarm of drones maximizes their inter-distance"),
// expressed as an LTL3 safety property over per-drone propositions and
// checked by the decentralized algorithm.
//
// Three drones fly a 1-D corridor and exchange position beacons. Each drone
// owns one proposition "D<i>.sep" — true while the last known distance to
// its neighbour is at least the separation minimum. The monitored property
//
//	G (D0.sep && D1.sep && D2.sep)
//
// is violated when any drone observes a separation breach; the decentralized
// monitors detect the violation and agree with the oracle.
package main

import (
	"fmt"
	"log"
	"math"

	"decentmon"
	"decentmon/internal/dist"
	"decentmon/internal/vclock"
)

const (
	drones = 3
	minSep = 10.0
	ticks  = 14
)

func main() {
	props := decentmon.NewProps()
	for d := 0; d < drones; d++ {
		props.MustAdd(fmt.Sprintf("D%d.sep", d), d)
	}
	traces := fly(props)
	if err := traces.Validate(); err != nil {
		log.Fatal("flight produced an invalid trace set: ", err)
	}

	spec, err := decentmon.Compile("G (D0.sep && D1.sep && D2.sep)", props)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d drones for G(all separated >= %.0fm) over %d events\n\n",
		drones, minSep, traces.TotalEvents())

	res, err := decentmon.Run(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := decentmon.Oracle(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decentralized verdicts: %v\n", res.VerdictList())
	fmt.Printf("oracle verdicts       : %v over %d lattice cuts\n", oracle.Verdicts, oracle.NumCuts)
	fmt.Printf("monitoring messages   : %d\n", res.NetMessages)
	if res.Verdicts[decentmon.Bottom] {
		fmt.Println("\nseparation violation detected: drones 1 and 2 converged mid-flight")
	}
}

// fly simulates the corridor flight and builds a causally valid trace set:
// every tick each drone updates its position (an internal event flipping its
// separation proposition), and every third tick sends a position beacon to
// its right neighbour (send + receive events with merged vector clocks).
func fly(props *decentmon.PropMap) *decentmon.TraceSet {
	ts := &decentmon.TraceSet{Props: props}
	clocks := make([]vclock.VC, drones)
	states := make([]dist.LocalState, drones)
	for d := 0; d < drones; d++ {
		ts.Traces = append(ts.Traces, &dist.Trace{Proc: d, Init: 1}) // separated at launch
		clocks[d] = vclock.New(drones)
		states[d] = 1
	}
	// Positions: drone d starts at 20·d; drones 1 and 2 converge around the
	// middle of the flight, then separate again.
	pos := func(d, tick int) float64 {
		base := 20.0 * float64(d)
		if d == 1 {
			return base + 6*math.Sin(float64(tick)/3) // drifts toward drone 2
		}
		if d == 2 {
			return base - 6*math.Sin(float64(tick)/3)
		}
		return base
	}
	neighbour := func(d int) int { return (d + 1) % drones }

	msgID := 0
	type beacon struct {
		vc   vclock.VC
		id   int
		from int
	}
	pending := map[int][]beacon{} // destination -> FIFO beacons in flight

	emit := func(d int, e *dist.Event) {
		e.Proc = d
		e.SN = clocks[d][d]
		e.VC = clocks[d].Clone()
		e.Time = float64(len(ts.Traces[d].Events)) // monotone per drone
		ts.Traces[d].Events = append(ts.Traces[d].Events, e)
	}

	for tick := 1; tick <= ticks; tick++ {
		for d := 0; d < drones; d++ {
			// Deliver at most one pending beacon first (FIFO).
			if q := pending[d]; len(q) > 0 {
				b := q[0]
				pending[d] = q[1:]
				clocks[d].Tick(d)
				clocks[d].Merge(b.vc)
				emit(d, &dist.Event{Type: dist.Recv, Peer: b.from, MsgID: b.id, State: states[d]})
			}
			// Position update: recompute separation to the neighbour.
			sep := math.Abs(pos(d, tick) - pos(neighbour(d), tick))
			var s dist.LocalState
			if sep >= minSep {
				s = 1
			}
			states[d] = s
			clocks[d].Tick(d)
			emit(d, &dist.Event{Type: dist.Internal, State: s})
			// Beacon every third tick.
			if tick%3 == 0 {
				msgID++
				clocks[d].Tick(d)
				emit(d, &dist.Event{Type: dist.Send, Peer: neighbour(d), MsgID: msgID, State: s})
				pending[neighbour(d)] = append(pending[neighbour(d)],
					beacon{vc: clocks[d].Clone(), id: msgID, from: d})
			}
		}
	}
	return ts
}
