// Monitors over real sockets: the decentralized algorithm running on a
// loopback TCP network (the stdlib-net analogue of the paper's WiFi
// peer-to-peer links), checking the mutual-exclusion safety property
//
//	G !(P0.p && P1.p && P2.p && P3.p)
//
// ("never do all four processes hold the resource concurrently") on a
// generated execution that violates it at the planted end.
package main

import (
	"fmt"
	"log"
	"time"

	"decentmon"
)

func main() {
	const n = 4
	props := decentmon.PerProcessProps(n, "p", "q")
	spec, err := decentmon.Compile("G !(P0.p && P1.p && P2.p && P3.p)", props)
	if err != nil {
		log.Fatal(err)
	}

	traces := decentmon.Generate(decentmon.GenConfig{
		N: n, InternalPerProc: 10,
		EvtMu: 3, EvtSigma: 1,
		CommMu: 3, CommSigma: 1,
		TrueProbs: map[string]float64{"p": 0.4, "q": 0.5},
		PlantGoal: true, // forces the all-p global state at the end: a violation
		Seed:      11,
	})

	nw, err := decentmon.NewTCPNetwork(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d monitors connected over loopback TCP\n", n)

	start := time.Now()
	res, err := decentmon.Run(spec, traces, decentmon.WithNetwork(nw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdicts: %v in %v\n", res.VerdictList(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("monitoring traffic: %d messages, %d bytes over TCP\n", res.NetMessages, res.NetBytes)

	oracle, err := decentmon.Oracle(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle agrees: %v\n", oracle.Verdicts)
	if res.Verdicts[decentmon.Bottom] {
		fmt.Println("mutual-exclusion violation correctly detected over the socket network")
	}
}
