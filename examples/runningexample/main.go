// The paper's running example, end to end: the two-process program of
// Fig. 2.1, the property ψ = G((x1≥5) → ((x2≥15) U (x1=10))) of Fig. 2.3,
// the 17-cut computation lattice of Fig. 2.2b, and the verdict set {⊥, ?}
// derived in Chapter 3 (Fig. 3.1).
package main

import (
	"fmt"
	"log"

	"decentmon"
)

func main() {
	traces := decentmon.RunningExample()
	fmt.Println("program (Fig 2.1):")
	fmt.Println("  P1: send(P2); x1=5; x1=10; recv(m2)")
	fmt.Println("  P2: recv(m1); x2=15; x2=20; send(P1)")
	fmt.Println()

	spec, err := decentmon.Compile(decentmon.RunningExampleProperty, traces.Props)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("property ψ (Fig 2.3): %s\n\n", decentmon.RunningExampleProperty)
	fmt.Println(spec.Describe())

	oracle, err := decentmon.Oracle(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computation lattice (Fig 2.2b): %d consistent cuts, %d edges\n",
		oracle.NumCuts, oracle.NumEdges)
	fmt.Printf("oracle verdict set (Fig 3.1)  : %v\n", oracle.Verdicts)
	fmt.Println("  — every path through ⟨e11⟩ before x2≥15 violates ψ (⊥);")
	fmt.Println("    the path advancing P2 first stays inconclusive (?).")
	fmt.Println()

	res, err := decentmon.Run(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decentralized monitors report: %v\n", res.VerdictList())
	fmt.Printf("with %d monitoring messages\n\n", res.NetMessages)

	fmt.Println("monitor automaton in DOT (paste into graphviz to reproduce Fig 2.3):")
	fmt.Println(spec.Dot("fig2_3"))
}
