package decentmon

import (
	"context"
	"io"
	"testing"

	"decentmon/internal/dist"
)

// driveHandles replays events[from:to] of a recorded trace set through live
// Process handles, sharing the cross-snapshot token ledger (a send before
// the snapshot may be received after the restore).
func driveHandles(t *testing.T, s *Session, events []*dist.Event, from, to int, tokens map[int]MsgToken) {
	t.Helper()
	for _, e := range events[from:to] {
		h := s.Process(e.Proc)
		var err error
		switch e.Type {
		case dist.Internal:
			err = h.Internal(e.State)
		case dist.Send:
			var tok MsgToken
			tok, err = h.Send(e.Peer, e.State)
			tokens[e.MsgID] = tok
		case dist.Recv:
			tok, ok := tokens[e.MsgID]
			if !ok {
				t.Fatalf("recv of message %d before its send", e.MsgID)
			}
			err = h.Recv(tok, e.State)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func mustCaseSpec(t *testing.T, prop string, arity int) *Spec {
	t.Helper()
	s, err := CaseStudySpecAt(prop, arity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func streamEvents(t *testing.T, ts *TraceSet) []*dist.Event {
	t.Helper()
	var evs []*dist.Event
	src := ts.Stream()
	for {
		e, err := src.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, e)
	}
}

// TestSessionSnapshotRestoreLiveHandles is the facade durability acceptance:
// a live-handle session is snapshotted mid-execution, the original is
// discarded, and a session restored from the blob — its handles continuing
// with the *same* stamper clocks — finishes to the uninterrupted run's
// verdict set.
func TestSessionSnapshotRestoreLiveHandles(t *testing.T) {
	ts := Generate(GenConfig{N: 4, InternalPerProc: 8, CommMu: 3, PlantGoal: true, Seed: 21})
	spec := mustCaseSpec(t, "B", 4)
	events := streamEvents(t, ts)

	full, err := NewSession(spec, 4, WithInitialState(ts.InitialState()))
	if err != nil {
		t.Fatal(err)
	}
	tokens := map[int]MsgToken{}
	driveHandles(t, full, events, 0, len(events), tokens)
	want, err := full.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, len(events) / 3, 2 * len(events) / 3} {
		s, err := NewSession(spec, 4, WithInitialState(ts.InitialState()))
		if err != nil {
			t.Fatal(err)
		}
		tokens := map[int]MsgToken{}
		driveHandles(t, s, events, 0, cut, tokens)
		snap, err := s.Snapshot(context.Background())
		if err != nil {
			t.Fatalf("snapshot at %d/%d: %v", cut, len(events), err)
		}
		if _, err := s.Close(); err != nil { // the "kill": this session is discarded
			t.Fatal(err)
		}
		r, err := RestoreSession(spec, 4, snap, WithInitialState(ts.InitialState()))
		if err != nil {
			t.Fatalf("restore at %d/%d: %v", cut, len(events), err)
		}
		fed := r.Fed()
		for p, f := range fed {
			if got := countFed(events[:cut], p); f != got {
				t.Fatalf("restored Fed()[%d] = %d, drove %d", p, f, got)
			}
		}
		driveHandles(t, r, events, cut, len(events), tokens)
		got, err := r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if verdictKey(got.Verdicts) != verdictKey(want.Verdicts) {
			t.Errorf("killed at %d/%d: verdicts %v != uninterrupted %v",
				cut, len(events), got.VerdictList(), want.VerdictList())
		}
	}
}

func countFed(events []*dist.Event, p int) int {
	n := 0
	for _, e := range events {
		if e.Proc == p {
			n++
		}
	}
	return n
}

// TestSessionSnapshotRefusals pins the unsupported combinations: Bounded
// sessions cannot snapshot or restore, WithValidation cannot restore, and a
// snapshot never restores under a different property or initial state.
func TestSessionSnapshotRefusals(t *testing.T) {
	ts := Generate(GenConfig{N: 3, InternalPerProc: 4, CommMu: 2, Seed: 5})
	spec := mustCaseSpec(t, "B", 3)

	b, err := NewSession(spec, 3, Bounded(), WithInitialState(ts.InitialState()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Snapshot(context.Background()); err == nil {
		t.Error("Bounded session snapshot must fail")
	}
	if _, err := b.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(spec, 3, WithInitialState(ts.InitialState()))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreSession(spec, 3, snap, Bounded()); err == nil {
		t.Error("restore with Bounded must fail")
	}
	if _, err := RestoreSession(spec, 3, snap, WithValidation()); err == nil {
		t.Error("restore with WithValidation must fail")
	}
	other := mustCaseSpec(t, "A", 3)
	if _, err := RestoreSession(other, 3, snap, WithInitialState(ts.InitialState())); err == nil {
		t.Error("restore under a different property must fail")
	}
	if _, err := RestoreSession(spec, 3, snap, WithInitialState(GlobalState{1, 0, 0})); err == nil {
		t.Error("restore under a different initial state must fail")
	}
	if _, err := RestoreSession(spec, 3, nil); err == nil {
		t.Error("restore from an empty blob must fail")
	}
	for off := 0; off < len(snap); off += 11 {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x3C
		if _, err := RestoreSession(spec, 3, mut, WithInitialState(ts.InitialState())); err == nil {
			t.Fatalf("byte flip at offset %d accepted", off)
		}
	}
}
