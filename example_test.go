package decentmon_test

import (
	"fmt"
	"log"

	"decentmon"
)

// Example shows the replay quickstart: compile an LTL3 property, generate a
// reproducible distributed execution, and monitor it with one decentralized
// monitor per process.
func Example() {
	// Three processes, each owning boolean propositions p and q.
	props := decentmon.PerProcessProps(3, "p", "q")

	// "Eventually all three processes raise p at the same consistent
	// global instant" — property B of the paper's case study.
	spec, err := decentmon.Compile("F (P0.p && P1.p && P2.p)", props)
	if err != nil {
		log.Fatal(err)
	}

	// A reproducible execution with the goal planted at the end.
	traces := decentmon.Generate(decentmon.GenConfig{
		N: 3, InternalPerProc: 8,
		CommMu: 3, CommSigma: 1,
		PlantGoal: true, Seed: 1,
	})

	res, err := decentmon.Run(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.VerdictList())
	// Output: [T]
}

// ExampleNewSession shows the online loop: monitors attached to a live
// execution through per-process handles, with verdicts delivered as they
// are detected. Vector clocks, sequence numbers and message ids are
// stamped internally; the token returned by Send travels to the receiver
// on the application's own channel.
func ExampleNewSession() {
	spec := decentmon.MustCompile("F (P0.p && P1.p)", decentmon.PerProcessProps(2, "p"))
	sess, err := decentmon.NewSession(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	p0, p1 := sess.Process(0), sess.Process(1)

	// Process 0 raises p, then messages process 1, which raises p too —
	// the two valuations hold at one consistent cut, proving the property.
	if err := p0.Internal(0b1); err != nil {
		log.Fatal(err)
	}
	tok, err := p0.Send(1, 0b1)
	if err != nil {
		log.Fatal(err)
	}
	if err := p1.Recv(tok, 0b1); err != nil {
		log.Fatal(err)
	}

	// The detection arrives online, before the execution even ends.
	ev := <-sess.Verdicts()
	fmt.Println("online:", ev.Verdict, "conclusive:", ev.Conclusive)

	res, err := sess.Close() // finalization + terminal result
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final:", res.VerdictList())
	// Output:
	// online: T conclusive: true
	// final: [T]
}
