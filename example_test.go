package decentmon_test

import (
	"fmt"
	"log"

	"decentmon"
)

// Example shows the replay quickstart: compile an LTL3 property, generate a
// reproducible distributed execution, and monitor it with one decentralized
// monitor per process.
func Example() {
	// Three processes, each owning boolean propositions p and q.
	props := decentmon.PerProcessProps(3, "p", "q")

	// "Eventually all three processes raise p at the same consistent
	// global instant" — property B of the paper's case study.
	spec, err := decentmon.Compile("F (P0.p && P1.p && P2.p)", props)
	if err != nil {
		log.Fatal(err)
	}

	// A reproducible execution with the goal planted at the end.
	traces := decentmon.Generate(decentmon.GenConfig{
		N: 3, InternalPerProc: 8,
		CommMu: 3, CommSigma: 1,
		PlantGoal: true, Seed: 1,
	})

	res, err := decentmon.Run(spec, traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.VerdictList())
	// Output: [T]
}

// ExampleNewSession shows the online loop: monitors attached to a live
// execution through per-process handles, with verdicts delivered as they
// are detected. Vector clocks, sequence numbers and message ids are
// stamped internally; the token returned by Send travels to the receiver
// on the application's own channel.
func ExampleNewSession() {
	spec := decentmon.MustCompile("F (P0.p && P1.p)", decentmon.PerProcessProps(2, "p"))
	sess, err := decentmon.NewSession(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	p0, p1 := sess.Process(0), sess.Process(1)

	// Process 0 raises p, then messages process 1, which raises p too —
	// the two valuations hold at one consistent cut, proving the property.
	if err := p0.Internal(0b1); err != nil {
		log.Fatal(err)
	}
	tok, err := p0.Send(1, 0b1)
	if err != nil {
		log.Fatal(err)
	}
	if err := p1.Recv(tok, 0b1); err != nil {
		log.Fatal(err)
	}

	// The detection arrives online, before the execution even ends.
	ev := <-sess.Verdicts()
	fmt.Println("online:", ev.Verdict, "conclusive:", ev.Conclusive)

	res, err := sess.Close() // finalization + terminal result
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final:", res.VerdictList())
	// Output:
	// online: T conclusive: true
	// final: [T]
}

// ExampleSession_Verdicts shows verdict subscription under feeder-side
// backpressure: a tight WithMaxLag throttles the replay to the monitors'
// collection rate, while the subscriber keeps receiving detections as they
// happen — the verdict channel is buffered for every possible event, so a
// slow subscriber can never wedge the monitors or the throttled feeder.
func ExampleSession_Verdicts() {
	spec := decentmon.MustCompile("F (P0.p && P1.p)", decentmon.PerProcessProps(2, "p"))
	sess, err := decentmon.NewSession(spec, 2, decentmon.WithMaxLag(8))
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe before feeding: detections arrive while the replay runs.
	// Which monitor proves the goal first is scheduling-dependent, so the
	// subscriber records the detection rather than its attribution.
	detected := make(chan decentmon.Verdict, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sess.Verdicts() {
			if ev.Conclusive {
				select {
				case detected <- ev.Verdict:
				default: // other monitors may prove it again; one is enough
				}
			}
		}
	}()

	// Replay a generated execution through the session; with the goal
	// planted at the end, the feeder outruns the monitors and the MaxLag
	// gate paces the admissions.
	traces := decentmon.Generate(decentmon.GenConfig{
		N: 2, InternalPerProc: 20, CommMu: 3, CommSigma: 1,
		PlantGoal: true, Seed: 1,
	})
	for _, tr := range traces.Traces {
		for _, e := range tr.Events {
			if err := sess.Feed(e); err != nil {
				log.Fatal(err)
			}
		}
		if err := sess.End(e0proc(tr)); err != nil {
			log.Fatal(err)
		}
	}

	res, err := sess.Close() // closes the verdict channel
	if err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Println("detected online:", <-detected)
	fmt.Println("final:", res.VerdictList())
	// Output:
	// detected online: T
	// final: [T]
}

// e0proc returns the owning process of a trace (its first event's Proc).
func e0proc(tr *decentmon.Trace) int { return tr.Events[0].Proc }
